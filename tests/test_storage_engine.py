"""Tests for repro.storage.engine — the async I/O engine semantics."""

import pytest

from repro.storage.blockstore import MemoryBlockStore
from repro.storage.engine import AsyncIOEngine, Compute, Read, ReadBatch
from repro.storage.interface import StorageInterface
from repro.storage.profiles import DEVICE_PROFILES, INTERFACE_PROFILES
from repro.storage.raid import StripedVolume


def make_engine(interface=None, count=1):
    store = MemoryBlockStore()
    address = store.allocate(1 << 18)
    store.write(address, bytes(range(256)) * 1024)
    volume = StripedVolume.of(DEVICE_PROFILES["cssd"], count)
    engine = AsyncIOEngine(volume, interface or INTERFACE_PROFILES["io_uring"], store)
    return engine, store


def reader_task(addresses, length=512):
    total = b""
    for address in addresses:
        data = yield Read(address, length)
        total += data
    return total


def compute_task(duration):
    yield Compute(duration)
    return "done"


def test_read_returns_actual_bytes():
    engine, store = make_engine()

    def task():
        data = yield Read(8, 4)
        return data

    result = engine.run([task()])
    assert result.results[0] == store.read(8, 4)


def test_read_batch_returns_list_in_order():
    engine, store = make_engine()

    def task():
        payload = yield ReadBatch([(0, 4), (16, 4), (32, 4)])
        return payload

    result = engine.run([task()])
    assert result.results[0] == [store.read(0, 4), store.read(16, 4), store.read(32, 4)]


def test_compute_only_task_costs_exactly_its_duration():
    engine, _ = make_engine()
    result = engine.run([compute_task(12_345.0)])
    assert result.makespan_ns == pytest.approx(12_345.0)
    assert result.compute_ns == pytest.approx(12_345.0)
    assert result.io_count == 0


def test_sync_interface_serializes_latency():
    """Eq. 6: with a synchronous interface every read blocks the CPU."""
    engine, _ = make_engine(interface=INTERFACE_PROFILES["mmap_sync"])
    n_reads = 10
    result = engine.run([reader_task([i * 512 for i in range(n_reads)])])
    latency = DEVICE_PROFILES["cssd"].latency_ns
    # Makespan at least N * (latency) — no overlap possible.
    assert result.makespan_ns >= n_reads * latency
    assert result.stall_ns > 0


def test_async_interleaving_overlaps_io():
    """Eq. 7: many interleaved tasks approach max(compute, io) time."""
    n_tasks, reads_per_task = 32, 8
    engine, _ = make_engine()
    tasks = [
        reader_task([(t * reads_per_task + i) * 512 for i in range(reads_per_task)])
        for t in range(n_tasks)
    ]
    result = engine.run(tasks)
    total_reads = n_tasks * reads_per_task
    serialized = total_reads * DEVICE_PROFILES["cssd"].latency_ns
    # Interleaving must beat the fully-serialized time by a wide margin.
    assert result.makespan_ns < serialized / 4
    assert result.io_count == total_reads


def test_async_single_task_still_waits_for_device():
    engine, _ = make_engine()
    result = engine.run([reader_task([0])])
    assert result.makespan_ns >= DEVICE_PROFILES["cssd"].latency_ns


def test_interface_overhead_charged_per_request():
    engine, _ = make_engine()
    n = 20
    result = engine.run([reader_task([i * 512 for i in range(n)])])
    assert result.io_cpu_ns == pytest.approx(n * INTERFACE_PROFILES["io_uring"].cpu_overhead_ns)


def test_multiple_workers_split_compute():
    engine, _ = make_engine()
    tasks = [compute_task(1000.0) for _ in range(8)]
    serial = engine.run(tasks, workers=1).makespan_ns
    parallel = engine.run([compute_task(1000.0) for _ in range(8)], workers=4).makespan_ns
    assert serial == pytest.approx(8_000.0)
    assert parallel == pytest.approx(2_000.0)


def test_workers_share_device_bound():
    """Storage saturation limits all workers collectively (Fig. 16)."""
    def io_heavy(base):
        for i in range(50):
            yield Read((base * 50 + i) * 512, 512)
        return None

    engine, _ = make_engine()
    one = engine.run([io_heavy(i) for i in range(8)], workers=1)
    engine2, _ = make_engine()
    many = engine2.run([io_heavy(i) for i in range(8)], workers=8)
    # With I/O dominating, adding CPUs cannot multiply throughput by 8.
    assert many.makespan_ns > one.makespan_ns / 4


def test_empty_read_batch_is_noop():
    engine, _ = make_engine()

    def task():
        payload = yield ReadBatch([])
        return payload

    result = engine.run([task()])
    assert result.results[0] == []
    assert result.io_count == 0


def test_unsupported_action_raises():
    engine, _ = make_engine()

    def task():
        yield "bogus"

    with pytest.raises(TypeError):
        engine.run([task()])


def test_invalid_worker_count():
    engine, _ = make_engine()
    with pytest.raises(ValueError):
        engine.run([], workers=0)


def test_results_keep_submission_order():
    engine, _ = make_engine()

    def task(value, reads):
        for i in range(reads):
            yield Read(i * 512, 16)
        return value

    result = engine.run([task("a", 5), task("b", 1), task("c", 3)])
    assert result.results == ["a", "b", "c"]


def test_tasks_per_second_and_mean_time():
    engine, _ = make_engine()
    result = engine.run([compute_task(1e6), compute_task(1e6)])
    assert result.mean_task_time_ns == pytest.approx(1e6)
    assert result.tasks_per_second == pytest.approx(1000.0)
