"""Tests for repro.storage.engine — the async I/O engine semantics."""

import math

import pytest

from repro.storage.blockstore import MemoryBlockStore
from repro.storage.engine import AsyncIOEngine, Compute, EngineSession, Read, ReadBatch
from repro.storage.profiles import DEVICE_PROFILES, INTERFACE_PROFILES
from repro.storage.raid import StripedVolume


def make_engine(interface=None, count=1):
    store = MemoryBlockStore()
    address = store.allocate(1 << 18)
    store.write(address, bytes(range(256)) * 1024)
    volume = StripedVolume.of(DEVICE_PROFILES["cssd"], count)
    engine = AsyncIOEngine(volume, interface or INTERFACE_PROFILES["io_uring"], store)
    return engine, store


def reader_task(addresses, length=512):
    total = b""
    for address in addresses:
        data = yield Read(address, length)
        total += data
    return total


def compute_task(duration):
    yield Compute(duration)
    return "done"


def test_read_returns_actual_bytes():
    engine, store = make_engine()

    def task():
        data = yield Read(8, 4)
        return data

    result = engine.run([task()])
    assert result.results[0] == store.read(8, 4)


def test_read_batch_returns_list_in_order():
    engine, store = make_engine()

    def task():
        payload = yield ReadBatch([(0, 4), (16, 4), (32, 4)])
        return payload

    result = engine.run([task()])
    assert result.results[0] == [store.read(0, 4), store.read(16, 4), store.read(32, 4)]


def test_compute_only_task_costs_exactly_its_duration():
    engine, _ = make_engine()
    result = engine.run([compute_task(12_345.0)])
    assert result.makespan_ns == pytest.approx(12_345.0)
    assert result.compute_ns == pytest.approx(12_345.0)
    assert result.io_count == 0


def test_sync_interface_serializes_latency():
    """Eq. 6: with a synchronous interface every read blocks the CPU."""
    engine, _ = make_engine(interface=INTERFACE_PROFILES["mmap_sync"])
    n_reads = 10
    result = engine.run([reader_task([i * 512 for i in range(n_reads)])])
    latency = DEVICE_PROFILES["cssd"].latency_ns
    # Makespan at least N * (latency) — no overlap possible.
    assert result.makespan_ns >= n_reads * latency
    assert result.stall_ns > 0


def test_async_interleaving_overlaps_io():
    """Eq. 7: many interleaved tasks approach max(compute, io) time."""
    n_tasks, reads_per_task = 32, 8
    engine, _ = make_engine()
    tasks = [
        reader_task([(t * reads_per_task + i) * 512 for i in range(reads_per_task)])
        for t in range(n_tasks)
    ]
    result = engine.run(tasks)
    total_reads = n_tasks * reads_per_task
    serialized = total_reads * DEVICE_PROFILES["cssd"].latency_ns
    # Interleaving must beat the fully-serialized time by a wide margin.
    assert result.makespan_ns < serialized / 4
    assert result.io_count == total_reads


def test_async_single_task_still_waits_for_device():
    engine, _ = make_engine()
    result = engine.run([reader_task([0])])
    assert result.makespan_ns >= DEVICE_PROFILES["cssd"].latency_ns


def test_interface_overhead_charged_per_request():
    engine, _ = make_engine()
    n = 20
    result = engine.run([reader_task([i * 512 for i in range(n)])])
    assert result.io_cpu_ns == pytest.approx(n * INTERFACE_PROFILES["io_uring"].cpu_overhead_ns)


def test_multiple_workers_split_compute():
    engine, _ = make_engine()
    tasks = [compute_task(1000.0) for _ in range(8)]
    serial = engine.run(tasks, workers=1).makespan_ns
    parallel = engine.run([compute_task(1000.0) for _ in range(8)], workers=4).makespan_ns
    assert serial == pytest.approx(8_000.0)
    assert parallel == pytest.approx(2_000.0)


def test_workers_share_device_bound():
    """Storage saturation limits all workers collectively (Fig. 16)."""
    def io_heavy(base):
        for i in range(50):
            yield Read((base * 50 + i) * 512, 512)
        return None

    engine, _ = make_engine()
    one = engine.run([io_heavy(i) for i in range(8)], workers=1)
    engine2, _ = make_engine()
    many = engine2.run([io_heavy(i) for i in range(8)], workers=8)
    # With I/O dominating, adding CPUs cannot multiply throughput by 8.
    assert many.makespan_ns > one.makespan_ns / 4


def test_empty_read_batch_is_noop():
    engine, _ = make_engine()

    def task():
        payload = yield ReadBatch([])
        return payload

    result = engine.run([task()])
    assert result.results[0] == []
    assert result.io_count == 0


def test_unsupported_action_raises():
    engine, _ = make_engine()

    def task():
        yield "bogus"

    with pytest.raises(TypeError):
        engine.run([task()])


def test_invalid_worker_count():
    engine, _ = make_engine()
    with pytest.raises(ValueError):
        engine.run([], workers=0)


def test_results_keep_submission_order():
    engine, _ = make_engine()

    def task(value, reads):
        for i in range(reads):
            yield Read(i * 512, 16)
        return value

    result = engine.run([task("a", 5), task("b", 1), task("c", 3)])
    assert result.results == ["a", "b", "c"]


def test_tasks_per_second_and_mean_time():
    engine, _ = make_engine()
    result = engine.run([compute_task(1e6), compute_task(1e6)])
    assert result.mean_task_time_ns == pytest.approx(1e6)
    assert result.tasks_per_second == pytest.approx(1000.0)


# -- EngineSession: incremental submission (the serving path) ---------------


def test_session_batch_equivalence_with_run():
    """run() is the submit-everything-at-zero special case of a session."""
    engine, _ = make_engine()
    batch = engine.run([reader_task([i * 512 for i in range(6)]) for _ in range(4)])
    engine2, _ = make_engine()
    session = engine2.session()
    for _ in range(4):
        session.submit(reader_task([i * 512 for i in range(6)]))
    session.drain()
    incremental = session.result()
    assert incremental.makespan_ns == pytest.approx(batch.makespan_ns)
    assert incremental.io_count == batch.io_count
    assert incremental.finish_times_ns == pytest.approx(batch.finish_times_ns)


def test_session_respects_ready_time():
    engine, _ = make_engine()
    session = engine.session()
    session.submit(compute_task(1_000.0), ready_ns=5_000.0)
    completions = session.drain()
    assert len(completions) == 1
    assert completions[0].finish_ns == pytest.approx(6_000.0)


def test_session_tags_completions():
    engine, _ = make_engine()
    session = engine.session()
    session.submit(compute_task(10.0), tag="alpha")
    session.submit(compute_task(10.0), tag="beta")
    tags = {c.tag for c in session.drain()}
    assert tags == {"alpha", "beta"}


def test_session_late_submission_after_stepping():
    """Tasks may be submitted while earlier ones are mid-flight."""
    engine, store = make_engine()
    session = engine.session()
    session.submit(reader_task([0, 512]), tag="early")
    assert session.step() is None  # early parks on its first read
    session.submit(compute_task(5.0), ready_ns=1e9, tag="late")
    completions = session.drain()
    assert [c.tag for c in sorted(completions, key=lambda c: c.finish_ns)] == [
        "early",
        "late",
    ]
    assert completions[0].result == store.read(0, 512) + store.read(512, 512)


def test_session_next_ready_and_has_work():
    engine, _ = make_engine()
    session = engine.session()
    assert not session.has_work
    assert math.isinf(session.next_ready_ns)
    session.submit(compute_task(1.0), ready_ns=42.0)
    assert session.has_work
    assert session.next_ready_ns == pytest.approx(42.0)
    session.drain()
    assert not session.has_work


def test_session_run_until_stops_at_horizon():
    engine, _ = make_engine()
    session = engine.session()
    session.submit(compute_task(1.0), ready_ns=100.0)
    session.submit(compute_task(1.0), ready_ns=10_000.0)
    done = session.run_until(5_000.0)
    assert len(done) == 1
    assert session.has_work
    assert len(session.drain()) == 1


def test_session_validation():
    engine, _ = make_engine()
    with pytest.raises(ValueError):
        engine.session(workers=0)
    session = engine.session()
    with pytest.raises(ValueError):
        session.submit(compute_task(1.0), ready_ns=-1.0)
    assert session.step() is None  # stepping an idle session is a no-op


def test_session_result_partial_then_final():
    engine, _ = make_engine()
    session = engine.session()
    session.submit(compute_task(7.0))
    session.drain()
    first = session.result()
    assert first.results == ["done"]
    session.submit(compute_task(7.0), ready_ns=100.0)
    session.drain()
    second = session.result()
    assert second.results == ["done", "done"]
    assert second.makespan_ns == pytest.approx(107.0)


def test_session_sync_interface_blocks_inline():
    engine, _ = make_engine(interface=INTERFACE_PROFILES["mmap_sync"])
    session = EngineSession(engine)
    session.submit(reader_task([0]))
    completions = session.drain()
    assert completions[0].finish_ns >= DEVICE_PROFILES["cssd"].latency_ns
    assert session.stall_ns > 0


# -- per-task profiling -------------------------------------------------------


def test_profiles_are_off_by_default():
    engine, _ = make_engine()
    session = engine.session()
    session.submit(compute_task(10.0))
    (completion,) = session.drain()
    assert completion.profile is None


def test_profile_accounts_task_time_exactly():
    """finish - start == compute + io_cpu + io_wait, per task."""
    engine, _ = make_engine()
    session = engine.session(profile_tasks=True)

    def task():
        yield Compute(500.0)
        yield Read(0, 512)
        yield ReadBatch([(512, 512), (1024, 512)])
        return None

    session.submit(task())
    (completion,) = session.drain()
    profile = completion.profile
    assert profile is not None
    assert profile.compute_ns == pytest.approx(500.0)
    assert profile.io_count == 3
    assert profile.io_cpu_ns > 0
    assert profile.io_wait_ns > 0
    accounted = profile.compute_ns + profile.io_cpu_ns + profile.io_wait_ns
    assert completion.finish_ns - profile.start_ns == pytest.approx(accounted)


def test_profile_start_is_first_run_not_submission():
    engine, _ = make_engine()
    session = engine.session(profile_tasks=True)
    session.submit(compute_task(10.0), ready_ns=5_000.0)
    (completion,) = session.drain()
    assert completion.profile.start_ns == pytest.approx(5_000.0)


def test_profile_sync_interface_charges_stall_as_io_wait():
    engine, _ = make_engine(interface=INTERFACE_PROFILES["mmap_sync"])
    session = engine.session(profile_tasks=True)
    session.submit(reader_task([0]))
    (completion,) = session.drain()
    assert completion.profile.io_wait_ns >= DEVICE_PROFILES["cssd"].latency_ns * 0.5


def test_submit_batch_equivalent_to_serial_submits():
    """One wave entry replays exactly as N ordered submits."""
    def tasks():
        return [reader_task([i * 512 for i in range(4)]) for _ in range(5)]

    engine, _ = make_engine()
    session = engine.session(workers=2)
    ids = session.submit_batch(tasks(), ready_ns=100.0, tags=list("abcde"))
    wave = session.drain()

    engine2, _ = make_engine()
    session2 = engine2.session(workers=2)
    serial_ids = [
        session2.submit(task, ready_ns=100.0, tag=tag)
        for task, tag in zip(tasks(), "abcde")
    ]
    serial = session2.drain()

    assert ids == serial_ids == list(range(5))
    assert [c.finish_ns for c in wave] == pytest.approx([c.finish_ns for c in serial])
    assert [c.tag for c in wave] == [c.tag for c in serial]
    assert [c.index for c in wave] == [c.index for c in serial]
    assert session.result().makespan_ns == pytest.approx(session2.result().makespan_ns)
    assert session.result().io_count == session2.result().io_count


def test_submit_batch_interleaves_with_scalar_submissions():
    engine, _ = make_engine()
    session = engine.session()
    session.submit(compute_task(50.0), ready_ns=0.0, tag="solo")
    session.submit_batch(
        [compute_task(10.0), compute_task(10.0)], ready_ns=5.0, tags=["w0", "w1"]
    )
    done = session.drain()
    assert {c.tag for c in done} == {"solo", "w0", "w1"}
    assert session.result().makespan_ns > 0


def test_submit_batch_empty_is_noop():
    engine, _ = make_engine()
    session = engine.session()
    assert session.submit_batch([]) == []
    assert not session.has_work


def test_submit_batch_validation():
    engine, _ = make_engine()
    session = engine.session()
    with pytest.raises(ValueError):
        session.submit_batch([compute_task(1.0)], ready_ns=-1.0)
    with pytest.raises(ValueError):
        session.submit_batch([compute_task(1.0)], tags=["a", "b"])


def test_submit_batch_round_robins_workers_from_next_index():
    """Wave members continue the same worker rotation scalar submits use."""
    engine, _ = make_engine()
    session = engine.session(workers=3)
    session.submit(compute_task(30.0))  # index 0 -> worker 0
    session.submit_batch([compute_task(30.0) for _ in range(4)])  # indices 1..4
    done = sorted(session.drain(), key=lambda c: c.index)
    # Workers 0/1/2 each run their tasks back to back; with 5 tasks of
    # equal cost, indices 0 and 3 share worker 0, 1 and 4 share worker 1.
    finish = {c.index: c.finish_ns for c in done}
    assert finish[3] == pytest.approx(finish[0] + 30.0)
    assert finish[4] == pytest.approx(finish[1] + 30.0)
