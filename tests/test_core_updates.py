"""Tests for repro.core.updates (incremental index maintenance)."""

import numpy as np
import pytest

from repro.core.e2lshos import E2LSHoSIndex
from repro.core.params import E2LSHParams
from repro.core.updates import IndexUpdater
from repro.storage.blockstore import MemoryBlockStore
from repro.storage.engine import AsyncIOEngine
from repro.storage.profiles import INTERFACE_PROFILES, make_volume


@pytest.fixture
def setup():
    rng = np.random.default_rng(97)
    n, d = 1200, 16
    centers = rng.normal(scale=4.0, size=(12, d))
    data = (centers[rng.integers(0, 12, n)] + rng.normal(scale=0.4, size=(n, d))).astype(
        np.float32
    )
    params = E2LSHParams(n=n, rho=0.35, gamma=0.7, s_factor=16)
    index = E2LSHoSIndex.build(data, params, store=MemoryBlockStore(), seed=8)
    return data, index, IndexUpdater(index), rng


def run_query(index, query, k=1):
    engine = AsyncIOEngine(
        make_volume("cssd", 1), INTERFACE_PROFILES["io_uring"], index.built.store
    )
    return index.run(np.asarray(query, dtype=np.float32)[None, :], engine, k=k).answers[0]


def test_inserted_object_is_findable(setup):
    data, index, updater, rng = setup
    novel = (np.full(16, 30.0) + rng.normal(scale=0.1, size=16)).astype(np.float32)
    new_id = updater.insert(novel)
    assert new_id == data.shape[0]
    answer = run_query(index, novel + rng.normal(scale=0.01, size=16).astype(np.float32))
    assert answer.found
    assert answer.ids[0] == new_id


def test_insert_batch_assigns_sequential_ids(setup):
    data, index, updater, rng = setup
    batch = rng.normal(scale=2.0, size=(5, 16)).astype(np.float32)
    ids = updater.insert_batch(batch)
    np.testing.assert_array_equal(ids, np.arange(data.shape[0], data.shape[0] + 5))
    assert index.data.shape[0] == data.shape[0] + 5
    assert updater.stats.inserted == 5


def test_insert_write_volume_is_tiny_vs_rebuild(setup):
    """Sec. 7: incremental maintenance barely consumes SSD endurance."""
    data, index, updater, rng = setup
    store = index.built.store
    before = store.bytes_written
    rebuild_cost = before  # building wrote the whole index once
    updater.insert(rng.normal(scale=2.0, size=16).astype(np.float32))
    incremental = store.bytes_written - before
    assert incremental < rebuild_cost / 50


def test_deleted_object_leaves_chains(setup):
    data, index, updater, rng = setup
    victim = 37
    updater.delete(victim)
    assert victim in updater.deleted_ids
    # The victim's entries are physically gone: a query at the victim's
    # own location no longer returns it.
    answer = run_query(index, data[victim])
    assert victim not in answer.ids.tolist()


def test_delete_then_filter(setup):
    data, index, updater, rng = setup
    updater.delete(3)
    filtered = updater.filter_answer_ids(np.array([1, 3, 5]))
    np.testing.assert_array_equal(filtered, [1, 5])
    with pytest.raises(ValueError):
        updater.delete(3)  # double delete
    with pytest.raises(ValueError):
        updater.delete(10**9)


def test_insert_then_delete_roundtrip(setup):
    data, index, updater, rng = setup
    novel = rng.normal(scale=2.0, size=16).astype(np.float32)
    new_id = updater.insert(novel)
    updater.delete(int(new_id))
    answer = run_query(index, novel)
    assert int(new_id) not in answer.ids.tolist()


def test_occupancy_filter_stays_exact_after_insert(setup):
    data, index, updater, rng = setup
    novel = (np.full(16, -25.0)).astype(np.float32)
    updater.insert(novel)
    built = index.built
    projections = built.bank.project(novel[None, :])
    for rung_index, radius in enumerate(built.ladder):
        hash_values = built.bank.mix32(built.bank.codes_for_radius(projections, radius))
        for table_index in (0, built.params.L - 1):
            assert built.tables[rung_index][table_index].contains(int(hash_values[0, table_index]))


def test_insert_rejects_bad_shapes(setup):
    data, index, updater, rng = setup
    with pytest.raises(ValueError):
        updater.insert_batch(np.zeros((2, 7), dtype=np.float32))
