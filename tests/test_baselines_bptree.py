"""Tests for repro.baselines.bptree (QALSH's B+ tree substrate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bptree import BPlusTree, TraversalCounters


def make_tree(keys, leaf_capacity=4, fanout=3):
    keys = np.asarray(keys, dtype=np.float64)
    return BPlusTree(keys, np.arange(keys.size), leaf_capacity=leaf_capacity, fanout=fanout)


def test_locate_first_geq():
    tree = make_tree([1.0, 3.0, 5.0, 7.0, 9.0, 11.0])
    leaf, index = tree.locate(5.0)
    assert leaf.keys[index] == 5.0
    leaf, index = tree.locate(5.5)
    assert leaf.keys[index] == 7.0
    leaf, index = tree.locate(-100)
    assert leaf.keys[index] == 1.0


def test_locate_beyond_max():
    tree = make_tree([1.0, 2.0, 3.0])
    leaf, index = tree.locate(100.0)
    assert index == leaf.keys.size  # one past the end of the last leaf


def test_window_basic():
    keys = np.arange(100, dtype=np.float64)
    tree = make_tree(keys)
    window_keys, window_values = tree.window(10.0, 20.0)
    np.testing.assert_array_equal(window_keys, np.arange(10, 20, dtype=np.float64))
    np.testing.assert_array_equal(window_values, np.arange(10, 20))


def test_window_counts_operations():
    tree = make_tree(np.arange(1000, dtype=np.float64), leaf_capacity=16, fanout=8)
    counters = TraversalCounters()
    tree.window(100.0, 200.0, counters)
    assert counters.entries_scanned == 100
    assert counters.leaf_visits >= 100 // 16
    assert counters.node_visits >= 1


def test_window_with_duplicates():
    keys = np.array([1.0, 2.0, 2.0, 2.0, 3.0, 4.0])
    tree = make_tree(keys)
    window_keys, _ = tree.window(2.0, 3.0)
    assert window_keys.tolist() == [2.0, 2.0, 2.0]


def test_window_empty_and_invalid():
    tree = make_tree([1.0, 5.0, 9.0])
    keys, values = tree.window(2.0, 4.0)
    assert keys.size == 0 and values.size == 0
    with pytest.raises(ValueError):
        tree.window(5.0, 1.0)


def test_min_max_and_len():
    tree = make_tree([3.0, 1.0, 2.0])  # unsorted input is sorted internally
    assert tree.min_key() == 1.0
    assert tree.max_key() == 3.0
    assert len(tree) == 3


def test_height_grows_logarithmically():
    small = make_tree(np.arange(8, dtype=np.float64), leaf_capacity=4, fanout=4)
    large = make_tree(np.arange(4096, dtype=np.float64), leaf_capacity=4, fanout=4)
    assert large.height > small.height
    assert large.height <= 7


def test_build_validation():
    with pytest.raises(ValueError):
        BPlusTree(np.array([]), np.array([]))
    with pytest.raises(ValueError):
        BPlusTree(np.array([1.0]), np.array([1, 2]))
    with pytest.raises(ValueError):
        BPlusTree(np.array([1.0]), np.array([1]), leaf_capacity=1)


@settings(max_examples=60, deadline=None)
@given(
    keys=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=300,
    ),
    bounds=st.tuples(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
    ),
)
def test_property_window_matches_sorted_filter(keys, bounds):
    """window(lo, hi) must equal the brute-force sorted filter."""
    lo, width = bounds
    hi = lo + width
    keys_arr = np.asarray(keys, dtype=np.float64)
    tree = BPlusTree(keys_arr, np.arange(keys_arr.size), leaf_capacity=8, fanout=4)
    window_keys, window_values = tree.window(lo, hi)
    order = np.argsort(keys_arr, kind="stable")
    sorted_keys = keys_arr[order]
    mask = (sorted_keys >= lo) & (sorted_keys < hi)
    np.testing.assert_array_equal(window_keys, sorted_keys[mask])
    # Returned values point back at entries with the same keys.
    np.testing.assert_array_equal(keys_arr[window_values], window_keys)
