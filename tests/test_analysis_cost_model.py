"""Tests for repro.analysis.cost_model (Eqs. 6-11)."""

import math

import pytest

from repro.analysis.cost_model import (
    async_query_time_ns,
    required_iops,
    required_request_rate,
    required_sync_iops,
    sync_query_time_ns,
)
from repro.utils.units import NS_PER_S


def test_eq6_sync_time():
    # T = T_compute + N_io (T_request + T_read)
    assert sync_query_time_ns(100.0, 10, 1.0, 50.0) == pytest.approx(100 + 10 * 51)


def test_eq7_async_time_is_max():
    compute_bound = async_query_time_ns(1000.0, 10, 1.0, 5.0)
    assert compute_bound == pytest.approx(1000 + 10 * 1.0)
    io_bound = async_query_time_ns(10.0, 100, 1.0, 50.0)
    assert io_bound == pytest.approx(100 * 50.0)


def test_async_never_exceeds_sync():
    for n_io in (1, 10, 1000):
        sync = sync_query_time_ns(500.0, n_io, 1.0, 100.0)
        asynchronous = async_query_time_ns(500.0, n_io, 1.0, 100.0)
        assert asynchronous <= sync


def test_eq11_required_iops():
    # 100 I/Os in 1 ms -> 100k IOPS.
    assert required_iops(100, 1e6) == pytest.approx(100 * NS_PER_S / 1e6)


def test_eq10_request_rate_headroom():
    rate = required_request_rate(100, 1e6, 0.5e6)
    assert rate == pytest.approx(100 * NS_PER_S / 0.5e6)
    # Compute alone exceeds the target: impossible.
    assert required_request_rate(100, 1e6, 1e6) == math.inf
    assert required_request_rate(100, 1e6, 2e6) == math.inf


def test_eq9_sync_matches_eq10_form():
    assert required_sync_iops(10, 1e6, 2e5) == pytest.approx(
        required_request_rate(10, 1e6, 2e5)
    )


def test_requirement_satisfies_model():
    """Plugging the required IOPS back into Eq. 7 meets the target."""
    compute, n_io, target = 2e5, 300, 1e6
    t_read = NS_PER_S / required_iops(n_io, target)
    t_request = NS_PER_S / required_request_rate(n_io, target, compute)
    assert async_query_time_ns(compute, n_io, t_request, t_read) <= target * 1.0001


def test_validation():
    with pytest.raises(ValueError):
        sync_query_time_ns(-1, 1, 1, 1)
    with pytest.raises(ValueError):
        async_query_time_ns(1, -1, 1, 1)
    with pytest.raises(ValueError):
        required_iops(10, 0)
    with pytest.raises(ValueError):
        required_request_rate(-1, 10, 1)
