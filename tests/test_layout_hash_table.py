"""Tests for repro.layout.hash_table."""

import numpy as np
import pytest

from repro.layout.bucket import NULL_ADDRESS
from repro.layout.hash_table import SLOT_SIZE, OnStorageHashTable
from repro.storage.blockstore import MemoryBlockStore


def test_initialized_to_null():
    store = MemoryBlockStore()
    table = OnStorageHashTable(store, table_bits=8)
    assert table.n_slots == 256
    assert table.size_bytes == 256 * SLOT_SIZE
    for slot in (0, 17, 255):
        assert table.read_slot(slot) == NULL_ADDRESS


def test_write_and_read_slot():
    store = MemoryBlockStore()
    table = OnStorageHashTable(store, table_bits=4)
    table.write_slot(3, 0xABCDEF)
    assert table.read_slot(3) == 0xABCDEF
    assert table.read_slot(2) == NULL_ADDRESS


def test_parse_slot_matches_read():
    store = MemoryBlockStore()
    table = OnStorageHashTable(store, table_bits=4)
    table.write_slot(1, 12345)
    raw = store.read(table.slot_address(1), SLOT_SIZE)
    assert OnStorageHashTable.parse_slot(raw) == 12345


def test_bulk_write_table():
    store = MemoryBlockStore()
    table = OnStorageHashTable(store, table_bits=6)
    image = np.full(64, NULL_ADDRESS, dtype=np.uint64)
    image[10] = 111
    image[63] = 222
    table.write_table(image)
    assert table.read_slot(10) == 111
    assert table.read_slot(63) == 222
    assert table.read_slot(0) == NULL_ADDRESS
    with pytest.raises(ValueError):
        table.write_table(np.zeros(10, dtype=np.uint64))


def test_write_slots_bulk_pairs():
    store = MemoryBlockStore()
    table = OnStorageHashTable(store, table_bits=5)
    table.write_slots(np.array([1, 2, 3]), np.array([10, 20, 30], dtype=np.uint64))
    assert [table.read_slot(s) for s in (1, 2, 3)] == [10, 20, 30]
    with pytest.raises(ValueError):
        table.write_slots(np.array([1]), np.array([1, 2], dtype=np.uint64))


def test_slot_bounds_checked():
    store = MemoryBlockStore()
    table = OnStorageHashTable(store, table_bits=4)
    with pytest.raises(ValueError):
        table.slot_address(16)
    with pytest.raises(ValueError):
        table.slot_address(-1)


def test_two_tables_do_not_overlap():
    store = MemoryBlockStore()
    first = OnStorageHashTable(store, table_bits=4)
    second = OnStorageHashTable(store, table_bits=4)
    first.write_slot(0, 1)
    second.write_slot(0, 2)
    assert first.read_slot(0) == 1
    assert second.read_slot(0) == 2


def test_invalid_bits():
    store = MemoryBlockStore()
    for bad in (0, 33):
        with pytest.raises(ValueError):
            OnStorageHashTable(store, table_bits=bad)
