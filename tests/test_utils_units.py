"""Tests for repro.utils.units."""

from repro.utils.units import (
    GIB,
    KIB,
    MIB,
    NS_PER_MS,
    NS_PER_S,
    NS_PER_US,
    TIB,
    format_bytes,
    format_iops,
    format_time,
)


def test_time_unit_constants_consistent():
    assert NS_PER_US * 1_000 == NS_PER_MS
    assert NS_PER_MS * 1_000 == NS_PER_S


def test_format_time_picks_natural_unit():
    assert format_time(12) == "12 ns"
    assert format_time(1_500) == "1.50 us"
    assert format_time(2_500_000) == "2.50 ms"
    assert format_time(3_200_000_000) == "3.20 s"


def test_format_bytes_binary_prefixes():
    assert format_bytes(512) == "512 B"
    assert format_bytes(2 * KIB) == "2.00 KiB"
    assert format_bytes(3 * MIB) == "3.00 MiB"
    assert format_bytes(4 * GIB) == "4.00 GiB"
    assert format_bytes(5 * TIB) == "5.00 TiB"


def test_format_iops_matches_paper_style():
    assert format_iops(273_000) == "273.0 kIOPS"
    assert format_iops(1_400_000) == "1.40 MIOPS"
    assert format_iops(210) == "210.0 IOPS"
