"""Tests for repro.storage.page_cache."""

import pytest

from repro.storage.blockstore import MemoryBlockStore
from repro.storage.page_cache import PAGE_SIZE, PageCache
from repro.storage.profiles import DEVICE_PROFILES, INTERFACE_PROFILES
from repro.storage.raid import StripedVolume


def make_cache(capacity_pages=4):
    store = MemoryBlockStore()
    address = store.allocate(64 * PAGE_SIZE)
    store.write(address, bytes([i % 256 for i in range(64 * PAGE_SIZE)]))
    volume = StripedVolume.of(DEVICE_PROFILES["cssd"], 1)
    cache = PageCache(
        volume=volume,
        store=store,
        interface=INTERFACE_PROFILES["mmap_sync"],
        capacity_bytes=capacity_pages * PAGE_SIZE,
    )
    return cache, store


def test_miss_then_hit():
    cache, store = make_cache()
    data, t1 = cache.read(0.0, 100, 16)
    assert data == store.read(100, 16)
    assert cache.stats.misses == 1 and cache.stats.hits == 0
    data, t2 = cache.read(t1, 100, 16)
    assert cache.stats.hits == 1
    # Hit is far cheaper than the miss (no device latency).
    assert (t2 - t1) < (t1 - 0.0) / 10


def test_miss_blocks_for_device_latency():
    cache, _ = make_cache()
    _, completion = cache.read(0.0, 0, 8)
    assert completion >= DEVICE_PROFILES["cssd"].latency_ns


def test_lru_eviction():
    cache, _ = make_cache(capacity_pages=2)
    clock = 0.0
    for page in (0, 1, 2):  # page 0 evicted when 2 is admitted
        _, clock = cache.read(clock, page * PAGE_SIZE, 8)
    assert cache.stats.misses == 3
    _, clock = cache.read(clock, 1 * PAGE_SIZE, 8)  # still resident
    assert cache.stats.hits == 1
    _, clock = cache.read(clock, 0 * PAGE_SIZE, 8)  # was evicted
    assert cache.stats.misses == 4


def test_lru_eviction_order_follows_recency_not_admission():
    """A hit refreshes recency: eviction removes the least recently
    *used* page, not the least recently admitted one."""
    cache, _ = make_cache(capacity_pages=3)
    clock = 0.0
    for page in (0, 1, 2):
        _, clock = cache.read(clock, page * PAGE_SIZE, 8)
    _, clock = cache.read(clock, 0 * PAGE_SIZE, 8)  # refresh 0: order 1, 2, 0
    assert cache.stats.hits == 1
    _, clock = cache.read(clock, 3 * PAGE_SIZE, 8)  # evicts 1 (LRU), not 0
    _, clock = cache.read(clock, 0 * PAGE_SIZE, 8)
    assert cache.stats.hits == 2  # 0 survived
    _, clock = cache.read(clock, 1 * PAGE_SIZE, 8)
    assert cache.stats.misses == 5  # 1 was the eviction victim


def test_lru_eviction_sequence_is_fifo_among_untouched_pages():
    cache, _ = make_cache(capacity_pages=2)
    clock = 0.0
    for page in (0, 1, 2, 3):  # 2 evicts 0, 3 evicts 1
        _, clock = cache.read(clock, page * PAGE_SIZE, 8)
    _, clock = cache.read(clock, 2 * PAGE_SIZE, 8)
    _, clock = cache.read(clock, 3 * PAGE_SIZE, 8)
    assert cache.stats.hits == 2
    _, clock = cache.read(clock, 0 * PAGE_SIZE, 8)
    _, clock = cache.read(clock, 1 * PAGE_SIZE, 8)
    assert cache.stats.misses == 6


def test_capacity_of_one_page_keeps_only_latest():
    cache, _ = make_cache(capacity_pages=1)
    clock = 0.0
    _, clock = cache.read(clock, 0, 8)
    _, clock = cache.read(clock, 0, 8)
    assert cache.stats.hits == 1
    _, clock = cache.read(clock, PAGE_SIZE, 8)
    _, clock = cache.read(clock, 0, 8)
    assert cache.stats.misses == 3


def test_read_spanning_pages_touches_each():
    cache, store = make_cache()
    data, _ = cache.read(0.0, PAGE_SIZE - 8, 16)
    assert data == store.read(PAGE_SIZE - 8, 16)
    assert cache.stats.accesses == 2


def test_random_access_defeats_small_cache():
    """The Sec. 6.5 effect: random access over a large span misses."""
    cache, _ = make_cache(capacity_pages=2)
    clock = 0.0
    for i in range(40):
        page = (i * 17) % 60
        _, clock = cache.read(clock, page * PAGE_SIZE, 8)
    assert cache.stats.miss_rate > 0.8


def test_reset():
    cache, _ = make_cache()
    cache.read(0.0, 0, 8)
    cache.reset()
    assert cache.stats.accesses == 0


def test_rejects_async_interface_and_bad_sizes():
    store = MemoryBlockStore()
    store.allocate(PAGE_SIZE)
    volume = StripedVolume.of(DEVICE_PROFILES["cssd"], 1)
    with pytest.raises(ValueError):
        PageCache(volume, store, INTERFACE_PROFILES["io_uring"], capacity_bytes=PAGE_SIZE)
    cache = PageCache(volume, store, INTERFACE_PROFILES["mmap_sync"], capacity_bytes=PAGE_SIZE)
    with pytest.raises(ValueError):
        cache.read(0.0, 0, 0)
