"""Tests for repro.core.multiprobe (Sec. 7 extension)."""

import numpy as np
import pytest

from repro.core.e2lsh import E2LSHIndex
from repro.core.multiprobe import MultiProbeE2LSH, perturbation_sequence
from repro.core.params import E2LSHParams
from repro.baselines.linear_scan import LinearScanIndex


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(71)
    n, d = 2000, 20
    centers = rng.normal(scale=4.0, size=(20, d))
    data = (centers[rng.integers(0, 20, n)] + rng.normal(scale=0.4, size=(n, d))).astype(
        np.float32
    )
    queries = (data[rng.integers(0, n, 10)] + rng.normal(scale=0.1, size=(10, d))).astype(
        np.float32
    )
    # Deliberately small L: multi-probe's job is to recover recall that a
    # shrunken index lost.
    params = E2LSHParams(n=n, rho=0.18, gamma=0.7, s_factor=32)
    index = E2LSHIndex(data, params, seed=6)
    return data, queries, index


def test_perturbation_sequence_ordered_by_score():
    boundary = np.array([[0.1, 0.9], [0.4, 0.6], [0.2, 0.8]]) ** 2
    probes = perturbation_sequence(boundary, max_probes=6)
    assert probes, "must generate probes"
    flat = boundary.reshape(-1)
    scores = [sum(flat[i] for i in probe) for probe in probes]
    assert scores == sorted(scores)
    # Cheapest singleton is the smallest boundary distance.
    assert probes[0] == (int(np.argmin(flat)),)


def test_perturbation_sets_flip_each_coordinate_once():
    rng = np.random.default_rng(2)
    boundary = rng.random((5, 2))
    for probe in perturbation_sequence(boundary, max_probes=20):
        coordinates = [i // 2 for i in probe]
        assert len(set(coordinates)) == len(coordinates)


def test_perturbation_sequence_edge_cases():
    boundary = np.array([[0.5, 0.5]])
    assert perturbation_sequence(boundary, 0) == []
    assert len(perturbation_sequence(boundary, 10)) <= 2
    with pytest.raises(ValueError):
        perturbation_sequence(np.zeros((3, 3)), 5)


def test_zero_probes_matches_plain_e2lsh(setup):
    """n_probes=0 probes only home buckets -> identical answers."""
    data, queries, index = setup
    multiprobe = MultiProbeE2LSH(index, n_probes=0)
    for q in queries[:4]:
        a = multiprobe.query(q, k=1)
        b = index.query(q, k=1)
        np.testing.assert_array_equal(a.ids, b.ids)


def test_probing_improves_recall_on_shrunken_index(setup):
    """With tiny L, extra probes must find at least as many neighbors."""
    data, queries, index = setup
    exact = LinearScanIndex(data)
    plain_hits = probe_hits = 0
    multiprobe = MultiProbeE2LSH(index, n_probes=12)
    for q in queries:
        truth = exact.query(q, k=1).ids[0]
        plain = index.query(q, k=1)
        probed = multiprobe.query(q, k=1)
        plain_hits += int(plain.found and plain.ids[0] == truth)
        probe_hits += int(probed.found and probed.ids[0] == truth)
    assert probe_hits >= plain_hits


def test_probes_visit_more_buckets(setup):
    data, queries, index = setup
    plain = index.query(queries[0], k=1)
    probed = MultiProbeE2LSH(index, n_probes=8).query(queries[0], k=1)
    assert probed.stats.buckets_probed > plain.stats.buckets_probed


def test_validation(setup):
    data, queries, index = setup
    with pytest.raises(ValueError):
        MultiProbeE2LSH(index, n_probes=-1)
    multiprobe = MultiProbeE2LSH(index)
    with pytest.raises(ValueError):
        multiprobe.query(queries[0], k=0)
    with pytest.raises(ValueError):
        multiprobe.query(np.zeros(3, dtype=np.float32))
