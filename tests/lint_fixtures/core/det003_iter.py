"""DET003 fixtures: unordered iteration inside the core/ scope."""

__all__ = [
    "bad_keys",
    "bad_set_call",
    "bad_set_comp",
    "bad_local_binding",
    "suppressed",
    "ok_sorted",
    "ok_literal_set",
    "ok_items",
    "ok_rebound",
]


def bad_keys(table: dict) -> list:
    out = []
    for key in table.keys():  # expect[DET003]
        out.append(key)
    return out


def bad_set_call(values: list) -> list:
    return [value for value in set(values)]  # expect[DET003]


def bad_set_comp(values: list) -> int:
    total = 0
    for value in {v * 2 for v in values}:  # expect[DET003]
        total += value
    return total


def bad_local_binding(values: list) -> int:
    pending = frozenset(values)
    total = 0
    for value in pending:  # expect[DET003]
        total += value
    return total


def suppressed(values: list) -> list:
    return [value for value in set(values)]  # repro: allow[DET003]


def ok_sorted(values: list, table: dict) -> list:
    ordered = [value for value in sorted(set(values))]
    return ordered + [key for key in sorted(table.keys())]


def ok_literal_set(flag: str) -> bool:
    matched = False
    for known in {"poisson", "uniform"}:
        matched = matched or flag == known
    return matched


def ok_items(table: dict) -> list:
    return [value for _, value in table.items()]


def ok_rebound(values: list) -> list:
    pending = set(values)
    pending = sorted(pending)
    return [value for value in pending]
