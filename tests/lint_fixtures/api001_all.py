"""API001 fixtures: incomplete and stale ``__all__`` entries."""

__all__ = ["exported", "EXPORTED_CONSTANT", "ghost"]  # expect[API001]

EXPORTED_CONSTANT = 7


def exported() -> int:
    return EXPORTED_CONSTANT


def missing() -> int:  # expect[API001]
    return 0


def suppressed() -> int:  # repro: allow[API001]
    return 1


def _private_helper() -> int:
    return 2
