"""DET002 fixtures: global-state randomness vs seeded Generators."""

import random

import numpy as np
from numpy.random import rand

__all__ = ["bad_stdlib", "bad_numpy", "bad_from_import", "suppressed", "ok_seeded"]


def bad_stdlib() -> float:
    random.seed(7)  # expect[DET002]
    return random.random()  # expect[DET002]


def bad_numpy() -> np.ndarray:
    np.random.seed(0)  # expect[DET002]
    return np.random.rand(3)  # expect[DET002]


def bad_from_import() -> np.ndarray:
    return rand(3)  # expect[DET002]


def suppressed() -> int:
    return random.randint(0, 1)  # repro: allow[DET002]


def ok_seeded(seed: int) -> np.ndarray:
    generator = np.random.default_rng(np.random.SeedSequence([seed]))
    local = random.Random(seed)
    return generator.standard_normal(3) + local.random()
