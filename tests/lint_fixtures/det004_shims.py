"""DET004 fixtures: deprecated shim usage."""

__all__ = ["bad_shim_call", "bad_shim_reference", "bad_flat_report", "ok_run", "ok_nested"]


def bad_shim_call(index, queries, cache) -> tuple:
    return index.run_mmap_sync(queries, cache, k=1)  # expect[DET004]


def bad_shim_reference(index):
    return index.run_mmap_sync  # expect[DET004]


def bad_flat_report(stats, sessions):
    return stats.report([session.result() for session in sessions])  # expect[DET004]


def ok_run(index, queries, cache) -> tuple:
    return index.run(queries, mode="mmap_sync", cache=cache)


def ok_nested(stats, sessions):
    return stats.report([[session.result() for session in row] for row in sessions])
