"""DET003 negative: identical patterns outside core//serving//storage/.

Order-insensitive tooling (reporting, offline analysis) may iterate
sets freely; the rule's scope is the subtree feeding the event loop.
"""

__all__ = ["set_iteration_is_fine_here"]


def set_iteration_is_fine_here(values: list) -> list:
    return [value for value in set(values)]
