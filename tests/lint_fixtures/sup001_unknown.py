"""SUP001 fixture: a suppression naming a rule id the registry lacks."""

__all__ = ["typoed_suppression"]


def typoed_suppression(values: list) -> list:
    return list(values)  # repro: allow[NOPE999]  # expect[SUP001]
