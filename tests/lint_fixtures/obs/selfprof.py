"""DET001 negative: the wall-only module allowlist covers obs/selfprof.py."""

import time

__all__ = ["wall_seconds"]


def wall_seconds(start: float) -> float:
    # Allowlisted wall-only module: no finding expected here.
    return time.perf_counter() - start
