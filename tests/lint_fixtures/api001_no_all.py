"""API001 fixture: a module with public symbols but no ``__all__``."""


def orphan_public_symbol() -> int:  # expect[API001]
    return 0
