"""SIM001 fixtures: the ingest update heap carries EVENT_UPDATE too.

The five-source serving loop added updates as a fifth event class; an
ingest arrival pushed without its ``EVENT_UPDATE`` tag would tie-break
against query events by payload instead of by the pinned order.
"""

import heapq

EVENT_UPDATE = 4

__all__ = [
    "EVENT_UPDATE",
    "bad_untagged_update",
    "ok_tagged_update",
]


def bad_untagged_update(heap: list, time_ns: float, update_id: int) -> None:
    heapq.heappush(heap, (time_ns, update_id))  # expect[SIM001]


def ok_tagged_update(heap: list, time_ns: float, update_id: int) -> None:
    heapq.heappush(heap, (time_ns, EVENT_UPDATE, update_id))
