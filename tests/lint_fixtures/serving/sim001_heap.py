"""SIM001 fixtures: serving heap pushes and the EVENT_* tag contract."""

import heapq
from heapq import heappush

EVENT_FLUSH = 1

__all__ = [
    "EVENT_FLUSH",
    "bad_untagged",
    "bad_not_a_tuple",
    "bad_replace",
    "bad_from_import",
    "suppressed",
    "ok_named_tag",
    "ok_attribute_tag",
]


def bad_untagged(heap: list, deadline: float, payload: int) -> None:
    heapq.heappush(heap, (deadline, payload))  # expect[SIM001]


def bad_not_a_tuple(heap: list, deadline: float) -> None:
    heapq.heappush(heap, deadline)  # expect[SIM001]


def bad_replace(heap: list, deadline: float, payload: int) -> None:
    heapq.heapreplace(heap, (deadline, payload))  # expect[SIM001]


def bad_from_import(heap: list, deadline: float, payload: int) -> None:
    heappush(heap, (deadline, payload))  # expect[SIM001]


def suppressed(heap: list, deadline: float, payload: int) -> None:
    heapq.heappush(heap, (deadline, payload))  # repro: allow[SIM001]


def ok_named_tag(heap: list, deadline: float, payload: int) -> None:
    heapq.heappush(heap, (deadline, EVENT_FLUSH, payload))


def ok_attribute_tag(heap: list, deadline: float, payload: int, events) -> None:
    heapq.heappush(heap, (deadline, events.EVENT_HEDGE, payload))
