"""DET001 fixtures: wall-clock reads in simulation-path code."""

import time
from datetime import datetime
from time import perf_counter as pc

__all__ = ["bad_direct", "bad_datetime", "bad_aliased", "suppressed", "ok_simulated"]


def bad_direct() -> float:
    return time.time()  # expect[DET001]


def bad_datetime() -> str:
    return datetime.now().isoformat()  # expect[DET001]


def bad_aliased() -> float:
    return pc()  # expect[DET001]


def suppressed() -> float:
    return time.perf_counter()  # repro: allow[DET001]


def ok_simulated(now_ns: float) -> float:
    # Simulated time threaded through arguments is the contract.
    return now_ns + 1_000.0
