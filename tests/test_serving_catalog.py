"""Tests for repro.serving.catalog: every entry seeded and replayable."""

import json
from dataclasses import asdict

import pytest

from repro.serving.catalog import CATALOG_NAMES, build_scenario, catalog
from repro.serving.scenario import ScenarioSpec, run_scenario


def test_catalog_names_are_the_committed_eight():
    assert CATALOG_NAMES == (
        "steady-state",
        "flash-crowd",
        "diurnal",
        "hot-set-drift",
        "replica-stall-storm",
        "correlated-fault",
        "steady-ingest",
        "compaction-stall-storm",
    )
    assert len(catalog(quick=True)) == len(CATALOG_NAMES)


def test_unknown_scenario_is_rejected():
    with pytest.raises(ValueError, match="unknown scenario"):
        build_scenario("steady-stat")


@pytest.mark.parametrize("name", CATALOG_NAMES)
def test_every_entry_round_trips_through_json(name):
    for quick in (True, False):
        spec = build_scenario(name, quick=quick)
        assert spec.name == name
        payload = json.loads(json.dumps(spec.to_dict()))
        assert ScenarioSpec.from_dict(payload) == spec


@pytest.mark.parametrize("name", CATALOG_NAMES)
def test_quick_entries_replay_byte_identically(name):
    spec = build_scenario(name, quick=True)
    first = json.dumps(asdict(run_scenario(spec).report), sort_keys=True)
    second = json.dumps(asdict(run_scenario(spec).report), sort_keys=True)
    assert first == second


def test_quick_and_full_scales_differ_only_in_size():
    quick = build_scenario("steady-state", quick=True)
    full = build_scenario("steady-state")
    assert quick.serving == full.serving
    assert quick.seed == full.seed
    assert quick.data.n < full.data.n
    assert quick.workload.requests < full.workload.requests


def test_fault_entries_window_inside_the_run():
    for name in ("replica-stall-storm", "correlated-fault"):
        spec = build_scenario(name, quick=True)
        run_ns = spec.workload.requests / spec.workload.qps * 1e9
        assert spec.faults, name
        for event in spec.faults.events:
            assert event.windowed
            assert 0 < event.start_ns < event.stop_ns <= run_ns
