"""Tests for repro.stats (operation counters and query statistics)."""

import pytest

from repro.stats import OpCounts, QueryStats


def test_opcounts_add_accumulates_every_field():
    a = OpCounts(
        projection_scalar_ops=1,
        distance_scalar_ops=2,
        candidate_fetches=3,
        bucket_lookups=4,
        tree_node_visits=5,
        btree_entry_scans=6,
        heap_ops=7,
        rounds=8,
    )
    b = OpCounts(projection_scalar_ops=10, rounds=1)
    a.add(b)
    assert a.projection_scalar_ops == 11
    assert a.rounds == 9
    assert a.heap_ops == 7


def test_opcounts_scaled_rounds_down():
    ops = OpCounts(candidate_fetches=5)
    assert ops.scaled(0.5).candidate_fetches == 2
    assert ops.scaled(2.0).candidate_fetches == 10


def test_query_stats_merge():
    a = QueryStats(rungs_searched=2, nonempty_buckets=3, bucket_sizes_examined=[1, 2])
    b = QueryStats(rungs_searched=1, nonempty_buckets=4, bucket_sizes_examined=[5])
    a.merge(b)
    assert a.rungs_searched == 3
    assert a.nonempty_buckets == 7
    assert a.bucket_sizes_examined == [1, 2, 5]


def test_n_io_infinite_block():
    stats = QueryStats(nonempty_buckets=13)
    assert stats.n_io_infinite_block == pytest.approx(26.0)


def test_compat_shim_reexports():
    from repro.core.query_stats import OpCounts as ShimOps
    from repro.core.query_stats import QueryStats as ShimStats

    assert ShimOps is OpCounts
    assert ShimStats is QueryStats
