"""Tests for repro.serving.ingest: delta tables, merges, and accounting.

The edge cases the merge window makes interesting: a delete that
catches its object while it still sits in an unmerged delta (DRAM
annihilation, never touches storage), an insert + delete of the same id
inside one merge window, and merge determinism — the same seed must
yield byte-identical reports *and* byte-identical post-merge query
results.  Satellite guard: update completions report their own latency
distribution and are never folded into the query percentiles.
"""

import json
from dataclasses import asdict

import numpy as np
import pytest

from repro.core.params import E2LSHParams
from repro.serving import (
    Arrival,
    DataConfig,
    DispatchConfig,
    Dispatcher,
    IngestConfig,
    QueryService,
    ScenarioSpec,
    ServingConfig,
    ShardedIndex,
    UpdateArrival,
    WorkloadSpec,
    run_scenario,
    workload_updates,
)
from repro.serving.stats import ServiceStats
from repro.storage.engine import EngineResult

N = 240
D = 8
K = 5


def small_fleet(scheme="table", n_shards=2, replicas=1, seed=3):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(N, D)).astype(np.float32)
    sharded = ShardedIndex.build(
        data,
        E2LSHParams(n=N),
        n_shards=n_shards,
        scheme=scheme,
        seed=seed,
        replicas=replicas,
    )
    return data, sharded


def run_with_updates(sharded, pool, updates, ingest=None, arrivals=None, k=K):
    service = QueryService(sharded)
    if arrivals is None:
        arrivals = [
            Arrival(query_id=i, time_ns=1_000_000.0 * (i + 1), pool_index=i)
            for i in range(pool.shape[0])
        ]
    report = service.run_arrivals(
        pool, arrivals, k=k, updates=updates, ingest=ingest or IngestConfig()
    )
    return service, report


# -- delta/merge edge cases --------------------------------------------------


def test_delete_of_insert_in_unmerged_delta_annihilates_in_dram():
    """Insert + delete of the same id within one merge window cancel in
    DRAM: nothing reaches storage, and queries answer exactly as if the
    pair never happened."""
    data, sharded = small_fleet()
    pool = data[:3].copy()

    control_service, control = run_with_updates(sharded, pool, updates=None)

    vector = (data[0] + 0.01).astype(np.float32)
    updates = [
        UpdateArrival(update_id=0, time_ns=10.0, kind="insert", object_id=N, vector=vector),
        UpdateArrival(update_id=1, time_ns=20.0, kind="delete", object_id=N),
    ]
    # A merge threshold far above two entries: the pair must meet in the
    # delta, not in the block store.
    service, report = run_with_updates(
        sharded, pool, updates, ingest=IngestConfig(merge_threshold=64)
    )

    assert report.updates_completed == 2
    assert report.inserts_applied == 1
    assert report.deletes_applied == 1
    assert report.merges_completed == 0
    assert report.merge_write_ios == 0
    assert report.merge_write_bytes == 0
    # Annihilation leaves no delta entry behind (no merge debt) ...
    assert report.shard_merge_debt == (0,) * sharded.n_shards
    # ... and no tombstone: queries answer byte-identically to a run
    # that never saw the pair.
    assert control.p99_ns == report.p99_ns
    for query_id, answer in control_service.answers.items():
        other = service.answers[query_id]
        assert np.array_equal(answer.ids, other.ids)
        assert np.array_equal(answer.distances, other.distances)


def test_insert_visible_through_merge_then_tombstoned_by_delete():
    """An insert is served from the delta, survives its merge into the
    block store, and disappears the moment its delete is applied."""
    data, sharded = small_fleet()
    pool = data[:1].copy()
    # The inserted vector IS the query: distance zero, so it must rank
    # first in any top-k that can see it.
    vector = data[0].copy()
    updates = [
        UpdateArrival(update_id=0, time_ns=10.0, kind="insert", object_id=N, vector=vector),
        UpdateArrival(update_id=1, time_ns=80_000_000.0, kind="delete", object_id=N),
    ]
    arrivals = [
        # Query 0 lands after the merge completed, query 1 after the delete.
        Arrival(query_id=0, time_ns=40_000_000.0, pool_index=0),
        Arrival(query_id=1, time_ns=120_000_000.0, pool_index=0),
    ]
    service, report = run_with_updates(
        sharded,
        pool,
        updates,
        ingest=IngestConfig(merge_threshold=1),
        arrivals=arrivals,
    )

    assert report.updates_completed == 2
    assert report.merges_completed >= 1
    assert report.merge_write_bytes > 0
    before, after = service.answers[0], service.answers[1]
    assert N in before.ids.tolist()
    # The inserted copy ties the original row at distance zero.
    assert before.distances[before.ids.tolist().index(N)] == 0.0
    assert N not in after.ids.tolist()


def test_noop_deletes_are_counted_not_applied():
    data, sharded = small_fleet()
    pool = data[:2].copy()
    updates = [
        # A scheduled id nothing ever inserted.
        UpdateArrival(update_id=0, time_ns=10.0, kind="delete", object_id=10**6),
        UpdateArrival(update_id=1, time_ns=20.0, kind="delete", object_id=0),
        # Deleting an already-deleted object resolves to nothing.
        UpdateArrival(update_id=2, time_ns=30.0, kind="delete", object_id=0),
    ]
    _, report = run_with_updates(sharded, pool, updates)
    assert report.updates_noop == 2
    assert report.deletes_applied == 1
    assert report.updates_completed == 1


def test_full_ingest_lanes_reject_updates():
    """With a tiny delta and a one-slot lane, a same-instant burst backs
    up behind the in-flight merge and sheds the excess."""
    data, sharded = small_fleet()
    pool = data[:2].copy()
    rng = np.random.default_rng(9)
    updates = [
        UpdateArrival(
            update_id=i,
            time_ns=float(i + 1),
            kind="insert",
            object_id=N + i,
            vector=rng.normal(size=D).astype(np.float32),
        )
        for i in range(12)
    ]
    _, report = run_with_updates(
        sharded,
        pool,
        updates,
        ingest=IngestConfig(delta_capacity=2, merge_threshold=2, queue_capacity=1),
    )
    assert report.updates_rejected > 0
    assert report.updates_completed + report.updates_rejected == len(updates)
    # Shedding is accounting-only: whatever was admitted still merged or
    # sits as visible debt; nothing half-applied.
    assert report.inserts_applied == report.updates_completed


@pytest.mark.parametrize("scheme", ["table", "hash", "range"])
def test_merge_determinism_same_seed_byte_identical(scheme):
    """Same seed -> byte-identical report AND byte-identical post-merge
    query results, across partitioning schemes."""
    spec = ScenarioSpec(
        name="ingest-determinism",
        data=DataConfig(n=300, pool_queries=6),
        serving=ServingConfig(
            n_shards=2,
            scheme=scheme,
            replicas=2,
            delta_capacity=16,
            merge_threshold=4,
        ),
        workload=WorkloadSpec(
            requests=8,
            qps=4_000.0,
            ingest_requests=24,
            ingest_qps=2_000.0,
            delete_fraction=0.25,
        ),
        seed=11,
        k=K,
    )
    results = [run_scenario(spec) for _ in range(2)]
    reports = [json.dumps(asdict(r.report), sort_keys=True) for r in results]
    assert reports[0] == reports[1]
    assert results[0].report.merges_completed > 0

    # Post-merge (compacted) batch answers are byte-identical too.
    for result in results:
        result.service.ingest.compact_now()
    pool = results[0].index.dataset.queries
    first = results[0].index.sharded.run(pool, k=K).answers
    second = results[1].index.sharded.run(pool, k=K).answers
    for a, b in zip(first, second):
        assert np.array_equal(a.ids, b.ids)
        assert np.array_equal(a.distances, b.distances)


# -- the describe() traffic-class guard (satellite bugfix) -------------------


def _engine_result():
    return EngineResult(
        makespan_ns=0.0,
        results=[],
        finish_times_ns=[],
        io_count=0,
        compute_ns=0.0,
        io_cpu_ns=0.0,
        stall_ns=0.0,
    )


def test_update_completions_never_fold_into_query_percentiles():
    """The ingest traffic class reports its own latency distribution;
    recording slow updates must not move the query percentiles."""
    shard_results = [[_engine_result()]]

    def stats_with_queries():
        stats = ServiceStats()
        for i, latency_ms in enumerate([1.0, 2.0, 3.0, 4.0]):
            stats.record_completion(i, i, arrival_ns=0.0, finish_ns=latency_ms * 1e6)
        return stats

    quiet = stats_with_queries().report(shard_results)

    noisy_stats = stats_with_queries()
    # Updates two orders of magnitude slower than any query.
    for i in range(4):
        noisy_stats.record_update(i, "insert", arrival_ns=0.0, finish_ns=4e8 + i)
    noisy = noisy_stats.report(shard_results)

    assert noisy.p50_ns == quiet.p50_ns
    assert noisy.p99_ns == quiet.p99_ns
    assert noisy.max_latency_ns == quiet.max_latency_ns
    assert noisy.update_p99_ns > noisy.p99_ns

    # describe() renders ingest as its own distinct block.
    text = noisy.describe()
    assert "ingest: applied 4 updates" in text
    assert "ingest latency: p50" in text
    assert "merges: 0 completed" in text
    assert "ingest" not in quiet.describe()


# -- validation and plumbing -------------------------------------------------


def test_ingest_config_validation():
    with pytest.raises(ValueError, match="merge_threshold"):
        IngestConfig(merge_threshold=0)
    with pytest.raises(ValueError, match="merge_threshold"):
        IngestConfig(delta_capacity=4, merge_threshold=8)
    with pytest.raises(ValueError, match="queue_capacity"):
        IngestConfig(queue_capacity=0)


def test_update_arrival_validation():
    with pytest.raises(ValueError, match="vector"):
        UpdateArrival(update_id=0, time_ns=0.0, kind="insert", object_id=1)
    with pytest.raises(ValueError, match="vector"):
        UpdateArrival(
            update_id=0,
            time_ns=0.0,
            kind="delete",
            object_id=1,
            vector=np.zeros(4, dtype=np.float32),
        )
    with pytest.raises(ValueError, match="kind"):
        UpdateArrival(update_id=0, time_ns=0.0, kind="upsert", object_id=1)


def test_workload_spec_ingest_validation():
    with pytest.raises(ValueError, match="ingest_qps"):
        WorkloadSpec(requests=4, qps=100.0, ingest_requests=4)
    with pytest.raises(ValueError, match="delete_fraction"):
        WorkloadSpec(
            requests=4,
            qps=100.0,
            ingest_requests=4,
            ingest_qps=50.0,
            delete_fraction=1.5,
        )
    with pytest.raises(ValueError, match="open"):
        WorkloadSpec(
            mode="closed", requests=4, concurrency=2, ingest_requests=4, ingest_qps=50.0
        )
    with pytest.raises(ValueError, match="ingest_requests"):
        WorkloadSpec(requests=4, qps=100.0, ingest_qps=50.0)


def test_workload_updates_deterministic_and_seed_sensitive():
    rng = np.random.default_rng(5)
    data = rng.normal(size=(64, D)).astype(np.float32)
    workload = WorkloadSpec(
        requests=8,
        qps=1_000.0,
        ingest_requests=16,
        ingest_qps=500.0,
        delete_fraction=0.3,
    )
    first = workload_updates(workload, data, seed=5)
    second = workload_updates(workload, data, seed=5)
    assert len(first) == len(second) == 16
    for a, b in zip(first, second):
        assert (a.update_id, a.time_ns, a.kind, a.object_id) == (
            b.update_id,
            b.time_ns,
            b.kind,
            b.object_id,
        )
        assert (a.vector is None) == (b.vector is None)
        if a.vector is not None:
            assert np.array_equal(a.vector, b.vector)
            assert a.vector.dtype == np.float32
    other = workload_updates(workload, data, seed=6)
    assert any(
        a.time_ns != b.time_ns or a.kind != b.kind for a, b in zip(first, other)
    )
    # Scheduled insert ids extend the dataset contiguously; deletes only
    # ever target the scheduled live population.
    insert_ids = [u.object_id for u in first if u.kind == "insert"]
    assert insert_ids == list(range(64, 64 + len(insert_ids)))
    for update in first:
        if update.kind == "delete":
            assert update.object_id < 64 + len(insert_ids)


def test_dispatcher_rejects_updates_without_a_coordinator():
    _, sharded = small_fleet()
    sessions = [group.sessions() for group in sharded.replica_groups]
    dispatcher = Dispatcher(sharded, sessions, DispatchConfig(), ServiceStats())
    with pytest.raises(RuntimeError, match="ingest"):
        dispatcher.admit_update(
            0.0, UpdateArrival(update_id=0, time_ns=0.0, kind="delete", object_id=0)
        )
