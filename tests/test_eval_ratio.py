"""Tests for repro.eval.ratio."""

import numpy as np
import pytest

from repro.eval.ground_truth import GroundTruth
from repro.eval.ratio import MISSING_PENALTY_RATIO, overall_ratio, recall_at_k


@pytest.fixture
def truth():
    return GroundTruth(
        ids=np.array([[0, 1, 2], [3, 4, 5]]),
        distances=np.array([[1.0, 2.0, 3.0], [0.5, 1.0, 1.5]]),
    )


def test_exact_answers_score_one(truth):
    answers = [np.array([1.0, 2.0, 3.0]), np.array([0.5, 1.0, 1.5])]
    assert overall_ratio(answers, truth, k=3) == pytest.approx(1.0)


def test_ratio_reflects_excess_distance(truth):
    answers = [np.array([2.0, 2.0, 3.0]), np.array([0.5, 1.0, 1.5])]
    # First query: (2/1 + 1 + 1)/3 = 4/3; second: 1. Mean = 7/6.
    assert overall_ratio(answers, truth, k=3) == pytest.approx(7 / 6)


def test_missing_answers_penalized(truth):
    answers = [np.array([1.0]), np.array([0.5, 1.0, 1.5])]
    ratio = overall_ratio(answers, truth, k=3)
    expected_first = (1.0 + 2 * MISSING_PENALTY_RATIO) / 3
    assert ratio == pytest.approx((expected_first + 1.0) / 2)


def test_better_than_exact_clamped(truth):
    """Floating-point noise below the exact distance must not give < 1."""
    answers = [np.array([0.999999, 2.0, 3.0]), np.array([0.5, 1.0, 1.5])]
    assert overall_ratio(answers, truth, k=3) >= 1.0


def test_k_subset(truth):
    answers = [np.array([1.0]), np.array([0.5])]
    assert overall_ratio(answers, truth, k=1) == pytest.approx(1.0)


def test_length_mismatch(truth):
    with pytest.raises(ValueError):
        overall_ratio([np.array([1.0])], truth, k=1)
    with pytest.raises(ValueError):
        overall_ratio([np.array([1.0]), np.array([1.0])], truth, k=5)


def test_recall(truth):
    answers = [np.array([0, 9, 2]), np.array([3, 4, 5])]
    assert recall_at_k(answers, truth, k=3) == pytest.approx((2 / 3 + 1.0) / 2)
    assert recall_at_k([np.array([0]), np.array([9])], truth, k=1) == pytest.approx(0.5)
