"""Property tests: the vectorized batch query path is bit-identical to
the scalar path.

``E2LSHoSIndex.query_tasks`` plans a whole wave at once (batch
projections, one ``searchsorted`` per rung, shared slot addressing) and
memoizes hash state across waves, but every member task must still
yield *exactly* the Compute/ReadBatch action stream of
``query_task(q)`` run alone — same simulated durations, same I/O
addresses in the same order, same answers, same op counts.  These tests
pin that contract across k/stop_k settings, rung descent depths, empty
buckets, duplicated queries, and warm plan caches.
"""

import numpy as np
import pytest

from repro.core.e2lshos import E2LSHoSIndex
from repro.core.params import E2LSHParams
from repro.core.radii import RadiusLadder
from repro.storage.blockstore import MemoryBlockStore
from repro.storage.engine import AsyncIOEngine, Compute, Read, ReadBatch
from repro.storage.profiles import INTERFACE_PROFILES, make_volume


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(61)
    n, d = 3000, 24
    centers = rng.normal(scale=4.0, size=(30, d))
    data = (centers[rng.integers(0, 30, n)] + rng.normal(scale=0.4, size=(n, d))).astype(
        np.float32
    )
    index = E2LSHoSIndex.build(
        data,
        E2LSHParams(n=n, rho=0.35, gamma=0.8, s_factor=8),
        store=MemoryBlockStore(),
        ladder=RadiusLadder.for_data(data, 2.0),
        seed=9,
    )
    near = (data[rng.integers(0, n, 6)] + rng.normal(scale=0.05, size=(6, d))).astype(
        np.float32
    )
    far = np.full((1, d), 80.0, dtype=np.float32)  # all rungs, empty buckets
    queries = np.vstack([near, far, near[2:3]])  # includes an exact duplicate
    return index, queries.astype(np.float32)


def drain(index, task):
    """Run one task to completion, recording its observable action stream."""
    actions, sent = [], None
    store = index.built.store
    while True:
        try:
            action = task.send(sent)
        except StopIteration as stop:
            return actions, stop.value
        sent = None
        if isinstance(action, Compute):
            actions.append(("compute", action.duration_ns))
        elif isinstance(action, ReadBatch):
            actions.append(("read_batch", tuple(action.requests)))
            sent = [store.read(addr, length) for addr, length in action.requests]
        elif isinstance(action, Read):  # pragma: no cover - path yields batches
            actions.append(("read", action.address, action.length))
            sent = store.read(action.address, action.length)


@pytest.mark.parametrize("k,stop_k", [(1, None), (5, None), (10, 2), (3, 8)])
def test_batch_action_streams_match_scalar(setup, k, stop_k):
    index, queries = setup
    batch_tasks = index.query_tasks(queries, k=k, stop_k=stop_k)
    for i, batch_task in enumerate(batch_tasks):
        batch_actions, batch_answer = drain(index, batch_task)
        scalar_actions, scalar_answer = drain(
            index, index.query_task(queries[i], k=k, stop_k=stop_k)
        )
        assert batch_actions == scalar_actions
        np.testing.assert_array_equal(batch_answer.ids, scalar_answer.ids)
        np.testing.assert_array_equal(batch_answer.distances, scalar_answer.distances)
        assert vars(batch_answer.stats.ops) == vars(scalar_answer.stats.ops)
        assert batch_answer.stats.ios_issued == scalar_answer.stats.ios_issued
        assert batch_answer.stats.rungs_searched == scalar_answer.stats.rungs_searched
        assert (
            batch_answer.stats.bucket_sizes_examined
            == scalar_answer.stats.bucket_sizes_examined
        )


def test_far_query_probes_every_rung_without_io(setup):
    index, queries = setup
    far = queries[6]
    _, answer = drain(index, index.query_tasks(far[None, :], k=1)[0])
    assert answer.stats.rungs_searched == len(index.ladder)
    assert answer.ids.size == 0


def test_engine_run_identical_scalar_vs_batch(setup):
    index, queries = setup

    def engine():
        return AsyncIOEngine(
            make_volume("cssd", 4), INTERFACE_PROFILES["io_uring"], index.built.store
        )

    batch = engine().run(index.query_tasks(queries, k=5))
    scalar = engine().run([index.query_task(q, k=5) for q in queries])
    assert batch.makespan_ns == scalar.makespan_ns
    assert batch.finish_times_ns == scalar.finish_times_ns
    assert batch.io_count == scalar.io_count
    assert batch.compute_ns == scalar.compute_ns
    for a, b in zip(batch.results, scalar.results):
        np.testing.assert_array_equal(a.ids, b.ids)
        np.testing.assert_array_equal(a.distances, b.distances)


def test_warm_plan_cache_changes_nothing(setup):
    """Replanning the same queries reuses memoized hash state bit-for-bit."""
    index, queries = setup
    cold = [drain(index, t) for t in index.query_tasks(queries, k=3)]
    warm = [drain(index, t) for t in index.query_tasks(queries, k=3)]
    for (cold_actions, cold_answer), (warm_actions, warm_answer) in zip(cold, warm):
        assert cold_actions == warm_actions
        np.testing.assert_array_equal(cold_answer.ids, warm_answer.ids)
        np.testing.assert_array_equal(cold_answer.distances, warm_answer.distances)


def test_duplicate_rows_in_one_wave_share_a_plan(setup):
    index, queries = setup
    dupes = np.vstack([queries[0], queries[0], queries[0]])
    tasks = index.query_tasks(dupes, k=2)
    drained = [drain(index, t) for t in tasks]
    for actions, answer in drained[1:]:
        assert actions == drained[0][0]
        np.testing.assert_array_equal(answer.ids, drained[0][1].ids)


def test_query_tasks_validation(setup):
    index, queries = setup
    d = queries.shape[1]
    with pytest.raises(ValueError, match="index expects"):
        index.query_tasks(np.zeros((2, d + 3), dtype=np.float32))
    with pytest.raises(ValueError, match="stop_k"):
        index.query_tasks(queries, k=1, stop_k=0)
    with pytest.raises(ValueError, match="id_map"):
        index.query_tasks(queries, k=1, id_map=np.arange(5))
    with pytest.raises(ValueError):
        next(index.query_tasks(queries, k=0)[0])
